package srmsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// The async pipeline's contract is indistinguishability: for every
// algorithm, disk count and worker count, Config.Async must change neither
// a byte of output nor a single I/O statistic. This is the public-API
// enforcement of the equivalence the internal packages prove piecewise.
func TestAsyncEquivalence(t *testing.T) {
	in := benchRecords(4000, 12345)
	encode := func(recs []Record) []byte {
		var buf bytes.Buffer
		if err := WriteRecords(&buf, recs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for _, alg := range []Algorithm{SRM, SRMDeterministic, DSM} {
		for _, d := range []int{1, 2, 4, 8} {
			workerSets := []int{0}
			if alg != DSM {
				workerSets = []int{1, 2, -1}
			}
			for _, workers := range workerSets {
				name := fmt.Sprintf("%s/D=%d/workers=%d", alg, d, workers)
				t.Run(name, func(t *testing.T) {
					cfg := Config{D: d, B: 4, K: 2, Algorithm: alg, Seed: 42, Workers: workers}

					syncOut, syncStats, err := Sort(in, cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Async = true
					asyncOut, asyncStats, err := Sort(in, cfg)
					if err != nil {
						t.Fatal(err)
					}

					if !bytes.Equal(encode(syncOut), encode(asyncOut)) {
						t.Fatal("async output differs from sync output")
					}
					if syncStats != asyncStats {
						t.Fatalf("stats diverge:\nsync  %+v\nasync %+v", syncStats, asyncStats)
					}
					if syncStats.TotalOps() != asyncStats.TotalOps() {
						t.Fatalf("op counts diverge: %d vs %d", syncStats.TotalOps(), asyncStats.TotalOps())
					}
				})
			}
		}
	}
}

// SortStream with Async must round-trip the wire format unchanged too.
func TestAsyncSortStreamEquivalence(t *testing.T) {
	in := benchRecords(3000, 777)
	var wire bytes.Buffer
	if err := WriteRecords(&wire, in); err != nil {
		t.Fatal(err)
	}

	run := func(async bool) ([]byte, Stats) {
		var out bytes.Buffer
		stats, err := SortStream(bytes.NewReader(wire.Bytes()), &out,
			Config{D: 4, B: 4, K: 2, Seed: 5, Async: async})
		if err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), stats
	}
	syncBytes, syncStats := run(false)
	asyncBytes, asyncStats := run(true)
	if !bytes.Equal(syncBytes, asyncBytes) {
		t.Fatal("async stream output differs from sync")
	}
	if syncStats != asyncStats {
		t.Fatalf("stream stats diverge:\nsync  %+v\nasync %+v", syncStats, asyncStats)
	}
}

// Duplicate-heavy keys with a tiny block size starve the forecast data
// structure and force virtual flushes; the async pipeline must take that
// path too, and take it often. (Folded in from the review-probe test.)
func TestAsyncFlushHeavyWorkload(t *testing.T) {
	var flushes, reread int64
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := make([]Record, 3000)
		for i := range in {
			in[i] = Record{Key: uint64(rng.Intn(150)), Val: uint64(i)}
		}
		for _, d := range []int{2, 4} {
			_, stats, err := Sort(in, Config{D: d, B: 3, K: 2, Algorithm: SRM, Seed: seed, Async: true})
			if err != nil {
				t.Fatal(err)
			}
			flushes += stats.Flushes
			reread += stats.BlocksReread
		}
	}
	if flushes == 0 {
		t.Fatal("duplicate-heavy workload triggered no virtual flushes")
	}
	t.Logf("total flushes=%d reread=%d", flushes, reread)
}

// A file-backed async sort through the public API must leave no goroutines
// (disk workers) behind once Sort returns — Sort owns the system's whole
// lifecycle.
func TestAsyncFileBackedNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	in := benchRecords(2000, 31)
	for i := 0; i < 2; i++ {
		out, _, err := Sort(in, Config{
			D: 4, B: 8, K: 2, Seed: 9, Async: true, Backend: FileBackend,
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(out); j++ {
			if out[j-1].Key > out[j].Key {
				t.Fatalf("not sorted at %d", j)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
