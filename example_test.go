package srmsort_test

import (
	"bytes"
	"fmt"
	"log"

	"srmsort"
)

// ExampleSort sorts a small reverse-ordered file with SRM and reports the
// geometry the configuration implies.
func ExampleSort() {
	records := make([]srmsort.Record, 1000)
	for i := range records {
		records[i] = srmsort.Record{Key: uint64(1000 - i), Val: uint64(i)}
	}
	sorted, stats, err := srmsort.Sort(records, srmsort.Config{
		D: 4, B: 8, K: 2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algorithm:", stats.Algorithm)
	fmt.Println("merge order R:", stats.R)
	fmt.Println("first key:", sorted[0].Key)
	fmt.Println("last key:", sorted[len(sorted)-1].Key)
	// Output:
	// algorithm: SRM
	// merge order R: 8
	// first key: 1
	// last key: 1000
}

// ExampleSortStream sorts records in the 16-byte wire format end to end.
func ExampleSortStream() {
	var in bytes.Buffer
	if err := srmsort.WriteRecords(&in, []srmsort.Record{
		{Key: 30}, {Key: 10}, {Key: 20},
	}); err != nil {
		log.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := srmsort.SortStream(&in, &out, srmsort.Config{D: 2, B: 2, K: 2}); err != nil {
		log.Fatal(err)
	}
	sorted, err := srmsort.ReadRecords(&out)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range sorted {
		fmt.Println(r.Key)
	}
	// Output:
	// 10
	// 20
	// 30
}

// ExampleConfig_MergeOrder shows how the paper's memory sizing
// M = (2k+4)·D·B + k·D² translates into merge orders: SRM merges R = kD
// runs at a time where DSM manages only about k+1.
func ExampleConfig_MergeOrder() {
	base := srmsort.Config{D: 10, B: 1000, K: 10}
	for _, alg := range []srmsort.Algorithm{srmsort.SRM, srmsort.DSM, srmsort.PSV} {
		cfg := base
		cfg.Algorithm = alg
		r, m, err := cfg.MergeOrder()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: R=%d with M=%d records\n", alg, r, m)
	}
	// Output:
	// SRM: R=100 with M=241000 records
	// DSM: R=11 with M=241000 records
	// PSV: R=10 with M=241000 records
}
