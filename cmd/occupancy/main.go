// Command occupancy explores the maximum-occupancy problems behind SRM's
// analysis (paper Section 7): classical (independent balls) and dependent
// (cyclic chains) occupancy, Monte Carlo estimates against the Theorem 2
// leading-order bounds, and the Lemma 9 chain-splitting normalisation.
//
// Usage:
//
//	occupancy -balls 250 -bins 50 [-trials 10000] [-seed 7]
//	occupancy -chains 9,4,7,12 -bins 5
//
// With -chains the dependent problem is run (and its Lemma 9 split form);
// otherwise the classical problem with -balls.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"srmsort/internal/occupancy"
)

func main() {
	var (
		balls  = flag.Int("balls", 100, "number of balls (classical mode)")
		bins   = flag.Int("bins", 10, "number of bins D")
		chains = flag.String("chains", "", "comma-separated chain lengths (dependent mode)")
		trials = flag.Int("trials", 20000, "Monte Carlo trials")
		seed   = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	if *chains != "" {
		lengths, err := parseChains(*chains)
		if err != nil {
			fmt.Fprintln(os.Stderr, "occupancy:", err)
			os.Exit(1)
		}
		total := 0
		for _, l := range lengths {
			total += l
		}
		est := occupancy.EstimateDependent(lengths, *bins, *trials, *seed)
		split := occupancy.SplitChains(lengths, *bins)
		estSplit := occupancy.EstimateDependent(split, *bins, *trials, *seed+1)
		cls := occupancy.EstimateClassical(total, *bins, *trials, *seed+2)
		fmt.Printf("dependent occupancy: %d balls in %d chains over %d bins\n",
			total, len(lengths), *bins)
		fmt.Printf("  E[max], chains as given:      %s\n", est)
		fmt.Printf("  E[max], Lemma 9 split %v: %s (must match)\n", split, estSplit)
		fmt.Printf("  E[max], classical same balls: %s (conjectured upper bound)\n", cls)
		printBound(float64(total)/float64(*bins), *bins)
		return
	}

	est := occupancy.EstimateClassical(*balls, *bins, *trials, *seed)
	fmt.Printf("classical occupancy: %d balls over %d bins\n", *balls, *bins)
	fmt.Printf("  E[max occupancy]: %s   (mean load %.2f)\n",
		est, float64(*balls)/float64(*bins))
	printBound(float64(*balls)/float64(*bins), *bins)
}

func printBound(k float64, d int) {
	finite := occupancy.FiniteBound(int(k*float64(d)+0.5), d)
	fmt.Printf("  Theorem 2 finite-D bound (optimised alpha): %.2f  [rigorous]\n", finite)
	bound := occupancy.BoundForBalls(k, d)
	if math.IsNaN(bound) {
		fmt.Println("  Theorem 2 leading-order bound: n/a (D too small for the asymptotic expression)")
		return
	}
	kind := "case 1 (k constant)"
	if k >= math.Log(float64(d)) {
		kind = "case 2 (k = r ln D)"
	}
	fmt.Printf("  Theorem 2 leading-order bound:              %.2f  [%s]\n", bound, kind)
}

func parseChains(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad chain length %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
