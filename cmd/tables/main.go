// Command tables regenerates every table and figure of the paper's
// evaluation (Barve, Grove, Vitter, "Simple Randomized Mergesort on
// Parallel Disks", SPAA 1996):
//
//	Table 1 — overhead v(k,D) = C(kD,D)/k by ball-throwing Monte Carlo
//	Table 2 — C_SRM/C_DSM using Table 1's v (worst-case expectation)
//	Table 3 — v(k,D) by simulating the SRM merge on average-case inputs
//	Table 4 — C'_SRM/C_DSM using Table 3's v
//	Figure 1 — dependent vs classical occupancy instance (N_b=12, C=5, D=4)
//
// plus the Theorem 1 analytic bounds. By default it runs a quick
// configuration; -full uses paper-scale parameters (minutes of CPU).
//
// Usage:
//
//	tables [-table 0|1|2|3|4] [-figure1] [-theorem1] [-ablation] [-full]
//	       [-trials N] [-blocks N] [-b N] [-seed N] [-csv]
//
// With no selection flags, everything is produced.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"srmsort/internal/analysis"
	"srmsort/internal/occupancy"
	"srmsort/internal/sim"
)

func main() {
	var (
		table    = flag.Int("table", -1, "table to produce (1-4); -1 = all")
		figure1  = flag.Bool("figure1", false, "produce only the Figure 1 experiment")
		theorem1 = flag.Bool("theorem1", false, "produce only the Theorem 1 bound sheet")
		ablation = flag.Bool("ablation", false, "produce only the design-choice ablation sheets")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		trials   = flag.Int("trials", 0, "override Monte Carlo trials per cell")
		blocks   = flag.Int("blocks", 0, "override blocks per run for Tables 3-4 (paper: 1000)")
		b        = flag.Int("b", 0, "override block size in records for Tables 3-4")
		seed     = flag.Int64("seed", 1996, "random seed")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	flag.Parse()

	// Quick defaults keep the whole sheet under ~20 s; -full matches the
	// paper's scale (runs of 1000 blocks; many ball-throwing trials).
	t1Trials, t3Trials, t3Blocks, t3B := 300, 2, 100, 4
	if *full {
		t1Trials, t3Trials, t3Blocks, t3B = 2000, 3, 1000, 16
	}
	if *trials > 0 {
		t1Trials, t3Trials = *trials, *trials
	}
	if *blocks > 0 {
		t3Blocks = *blocks
	}
	if *b > 0 {
		t3B = *b
	}

	all := *table < 0 && !*figure1 && !*theorem1 && !*ablation
	want := func(n int) bool { return all || *table == n }

	var t1 *analysis.Table
	if want(1) || want(2) {
		t1 = analysis.Table1(analysis.PaperTable1Ks, analysis.PaperTable1Ds, t1Trials, *seed)
	}
	render := func(t *analysis.Table) string {
		if *csv {
			return t.Name + "\n" + t.CSV()
		}
		return t.Format(2)
	}
	if want(1) {
		fmt.Println(render(t1))
	}
	if want(2) {
		fmt.Println(render(analysis.Table2(t1, 1000)))
	}

	var t3 *analysis.Table
	if want(3) || want(4) {
		var err error
		t3, err = sim.Table3(sim.PaperTable3Ks, sim.PaperTable3Ds, t3Blocks, t3B, t3Trials, *seed+77)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table 3:", err)
			os.Exit(1)
		}
	}
	if want(3) {
		fmt.Println(render(t3))
	}
	if want(4) {
		fmt.Println(render(sim.Table4(t3, 1000)))
	}

	if all || *figure1 {
		figure1Experiment(*seed)
	}
	if all || *theorem1 {
		theorem1Sheet()
	}
	if all || *ablation {
		ablationSheets(*seed, t3Trials)
	}
}

// ablationSheets probes the design choices DESIGN.md calls out: the
// insignificance of the block size B and of the run length (Section 9.3's
// remark), the placement policy (random vs staggered vs the adversarial
// fixed layout), and partial striping (Section 2.2 / [VS94]).
func ablationSheets(seed int64, trials int) {
	fmt.Println("Ablation A: v(k=5, D=10) vs block size B (runs of 200 blocks — B is immaterial)")
	for _, b := range []int{2, 4, 16, 50} {
		v, err := sim.OverheadV(5, 10, 200, b, trials, seed+11)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Printf("  B=%-4d v=%.4f\n", b, v)
	}
	fmt.Println()

	fmt.Println("Ablation B: v(k=5, D=10) vs run length (blocks per run)")
	for _, blocks := range []int{50, 200, 1000} {
		v, err := sim.OverheadV(5, 10, blocks, 8, trials, seed+12)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Printf("  L=%-5d blocks  v=%.4f\n", blocks, v)
	}
	fmt.Println()

	fmt.Println("Ablation C: v(k=5, D=10) vs placement policy (Section 3 / Section 8)")
	for _, p := range []string{"random", "staggered", "fixed"} {
		v, err := sim.OverheadVPlacement(5, 10, 200, 8, trials, seed+13, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-10s v=%.4f\n", p, v)
	}
	fmt.Println()

	fmt.Println("Ablation D: partial striping ([VS94], Section 2.2) — 64 physical disks, B=2")
	fmt.Println("  clustering c disks gives D'=64/c logical disks with blocks of c*B records;")
	fmt.Println("  bandwidth is unchanged, occupancy overhead falls with D':")
	for _, c := range []int{1, 2, 4, 8} {
		dPrime, bPrime, err := analysis.PartialStripe(64, 2, c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		v, err := sim.OverheadV(5, dPrime, 800/c, bPrime, trials, seed+14)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Printf("  c=%d  D'=%-3d B'=%-3d  v=%.4f\n", c, dPrime, bPrime, v)
	}
	fmt.Printf("  minimal c enforcing D' <= B': %d\n", analysis.ClusterSize(64, 2))
	fmt.Println()

	fmt.Println("Ablation E: stagger preservation (Section 8) — v(k=2, D=10) vs run length")
	fmt.Println("  short staggered runs keep their stagger for the whole merge (v -> 1);")
	fmt.Println("  random placement pays the occupancy overhead at every length:")
	fmt.Printf("  %8s %12s %12s\n", "blocks", "staggered", "random")
	for _, blocks := range []int{5, 50, 500} {
		vs, err := sim.OverheadVPlacement(2, 10, blocks, 8, trials, seed+15, "staggered")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		vr, err := sim.OverheadVPlacement(2, 10, blocks, 8, trials, seed+16, "random")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Printf("  %8d %12.4f %12.4f\n", blocks, vs, vr)
	}
	fmt.Println()
}

// figure1Experiment reproduces Figure 1: the same N_b=12 balls land in D=4
// bins either as C=5 cyclic chains (dependent occupancy) or independently
// (classical occupancy). Cyclic chains smooth the distribution, so the
// expected maximum occupancy is lower — the paper's Section 7.2 conjecture.
func figure1Experiment(seed int64) {
	chains := []int{4, 3, 2, 2, 1} // N_b = 12, C = 5, as in the figure
	const bins = 4
	dep := occupancy.ExactDependentExpectation(chains, bins)
	cls := occupancy.ExactClassicalExpectation(12, bins)
	fmt.Println("Figure 1: dependent vs classical occupancy (N_b=12, C=5 chains, D=4 bins)")
	fmt.Printf("  chains %v, cyclically deposited\n", chains)
	fmt.Printf("  E[max occupancy], dependent (exact enumeration): %.4f\n", dep)
	fmt.Printf("  E[max occupancy], classical (exact enumeration): %.4f\n", cls)
	fmt.Printf("  dependent <= classical: %v (the Section 7.2 conjecture)\n", dep <= cls)
	fmt.Println()
	fmt.Println("  Monte Carlo sweep of the conjecture (100k trials per cell):")
	fmt.Printf("  %8s %6s %6s %12s %12s\n", "balls", "bins", "chain", "dependent", "classical")
	for _, tc := range []struct{ balls, bins, chainLen int }{
		{25, 5, 5}, {100, 10, 5}, {250, 50, 10}, {504, 10, 7},
	} {
		chains := make([]int, tc.balls/tc.chainLen)
		for i := range chains {
			chains[i] = tc.chainLen
		}
		d := occupancy.EstimateDependent(chains, tc.bins, 100000, seed+3)
		c := occupancy.EstimateClassical(tc.balls, tc.bins, 100000, seed+4)
		fmt.Printf("  %8d %6d %6d %12s %12s\n", tc.balls, tc.bins, tc.chainLen, d, c)
	}
	fmt.Println()
}

// theorem1Sheet prints the Theorem 1 read bounds next to the bandwidth
// minimum for representative machine shapes. Two bound flavours appear:
// the paper's leading-order expansions (meaningful as D grows) and the
// rigorous finite-D bound obtained by numerically optimising the proof's
// free parameter (occupancy.FiniteBound).
func theorem1Sheet() {
	fmt.Println("Theorem 1: bounds on SRM's expected reads (N = 10^9 records)")
	fmt.Printf("  %6s %6s %6s %14s %14s %14s %14s %8s\n",
		"k", "D", "B", "N/DB (min)", "asympt bound", "finite bound", "writes exact", "factor")
	const n = 1_000_000_000
	for _, tc := range []struct{ k, d, b int }{
		{5, 50, 1000}, {10, 50, 1000}, {100, 50, 1000},
		{5, 1000, 1000}, {100, 1000, 1000}, {1000, 1000, 1000},
	} {
		m := analysis.MemoryForK(tc.k, tc.d, tc.b)
		min := float64(n) / float64(tc.d*tc.b)
		reads := analysis.Theorem1Reads(n, m, tc.d, tc.b, tc.k)
		finite := analysis.Theorem1ReadsFinite(n, m, tc.d, tc.b, tc.k)
		writes := analysis.Theorem1Writes(n, m, tc.d, tc.b, tc.k*tc.d)
		factor := finite / min
		if math.IsNaN(reads) {
			continue
		}
		fmt.Printf("  %6d %6d %6d %14.0f %14.0f %14.0f %14.0f %8.2f\n",
			tc.k, tc.d, tc.b, min, reads, finite, writes, factor)
	}
	fmt.Println()
}
