package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"srmsort"
)

// TestMain lets the test binary stand in for the srmsort CLI: with
// SRMSORT_RUN_MAIN=1 it runs main() on its own arguments, so tests can
// exec a real CLI invocation without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("SRMSORT_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SRMSORT_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestValidateRecovery covers the cross-flag validator directly.
func TestValidateRecovery(t *testing.T) {
	withManifest := t.TempDir()
	if err := os.WriteFile(filepath.Join(withManifest, "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := t.TempDir()

	varlenManifest := t.TempDir()
	if err := os.WriteFile(filepath.Join(varlenManifest, "manifest.json"), []byte(`{"Codec":"varlen"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		backend srmsort.Backend
		dir     string
		codec   string
		resume  bool
		scrub   bool
		wantErr string // "" = valid
	}{
		{"plain sort", srmsort.MemBackend, "", "fixed16", false, false, ""},
		{"resume on mem", srmsort.MemBackend, "", "fixed16", true, false, "-backend file"},
		{"scrub on mem", srmsort.MemBackend, "", "fixed16", false, true, "-backend file"},
		{"resume without dir", srmsort.FileBackend, "", "fixed16", true, false, "-dir"},
		{"scrub without dir", srmsort.FileBackend, "", "fixed16", false, true, "-dir"},
		{"resume missing dir", srmsort.FileBackend, filepath.Join(empty, "nope"), "fixed16", true, false, "does not exist"},
		{"resume without manifest", srmsort.FileBackend, empty, "fixed16", true, false, "no checkpoint manifest"},
		{"resume with manifest", srmsort.FileBackend, withManifest, "fixed16", true, false, ""},
		{"scrub with dir", srmsort.FileBackend, empty, "fixed16", false, true, ""},
		{"resume wrong codec", srmsort.FileBackend, varlenManifest, "fixed16", true, false, "written with codec varlen"},
		{"resume matching codec", srmsort.FileBackend, varlenManifest, "varlen", true, false, ""},
		{"scrub wrong codec", srmsort.FileBackend, varlenManifest, "varlen+flate", false, true, "-codec varlen"},
		{"legacy manifest means fixed16", srmsort.FileBackend, withManifest, "varlen", true, false, "written with codec fixed16"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRecovery(tc.backend, tc.dir, tc.codec, tc.resume, tc.scrub)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestCLIFailsFast execs the real CLI and checks the misuse cases die in
// milliseconds with one actionable line — before any input is generated
// or sorted.
func TestCLIFailsFast(t *testing.T) {
	out, err := runCLI(t, "-resume")
	if err == nil {
		t.Fatalf("-resume on the mem backend succeeded; output:\n%s", out)
	}
	if !strings.Contains(out, "-backend file") {
		t.Fatalf("error does not tell the user what to do:\n%s", out)
	}

	out, err = runCLI(t, "-scrub")
	if err == nil {
		t.Fatalf("-scrub on the mem backend succeeded; output:\n%s", out)
	}
	if !strings.Contains(out, "-backend file") {
		t.Fatalf("error does not tell the user what to do:\n%s", out)
	}

	out, err = runCLI(t, "-resume", "-backend", "file", "-dir", t.TempDir())
	if err == nil {
		t.Fatalf("-resume with no checkpoint state succeeded; output:\n%s", out)
	}
	if !strings.Contains(out, "no checkpoint manifest") {
		t.Fatalf("error does not name the missing manifest:\n%s", out)
	}
}

// TestCLISortsSmall is the happy-path smoke test: the CLI still sorts.
func TestCLISortsSmall(t *testing.T) {
	out, err := runCLI(t, "-n", "2000", "-d", "4", "-b", "8", "-k", "3")
	if err != nil {
		t.Fatalf("CLI failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "sorted 2000 records") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestCLISortsVarlen smoke-tests the varlen codecs end to end, on both
// backends (-verify checks key-then-payload order inside the CLI).
func TestCLISortsVarlen(t *testing.T) {
	for _, codec := range []string{"varlen", "varlen+flate"} {
		out, err := runCLI(t, "-n", "2000", "-d", "4", "-b", "8", "-k", "3", "-codec", codec)
		if err != nil {
			t.Fatalf("CLI -codec %s failed: %v\n%s", codec, err, out)
		}
		if !strings.Contains(out, "sorted 2000 records") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	}
	out, err := runCLI(t, "-n", "1000", "-d", "4", "-b", "8", "-k", "3",
		"-codec", "varlen", "-backend", "file", "-dir", t.TempDir(), "-input", "dups")
	if err != nil {
		t.Fatalf("CLI varlen on the file backend failed: %v\n%s", err, out)
	}
}
