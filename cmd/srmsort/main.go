// Command srmsort externally sorts a synthetic record file on a simulated
// D-disk parallel I/O system and reports the full I/O statistics, in the
// cost unit of Barve–Grove–Vitter (SPAA 1996): parallel I/O operations.
//
// Usage:
//
//	srmsort -n 1000000 -d 8 -b 64 -k 4 [-alg srm|srm-det|dsm|psv] [-workers N]
//	        [-cores N] [-async] [-input random|sorted|reverse|dups] [-runform load|rs]
//	        [-model none|1996|modern] [-backend mem|file] [-dir DIR]
//	        [-codec fixed16|varlen|varlen+flate]
//	        [-seed N] [-verify] [-cpuprofile FILE] [-memprofile FILE]
//	        [-retries N] [-op-deadline DUR] [-hedge-after DUR] [-v]
//	        [-checkpoint] [-resume] [-scrub]
//
// -codec selects the record codec: fixed16 (the default 16-byte records),
// varlen (variable-length keys and payloads) or varlen+flate (varlen with
// per-block compression). A checkpoint records its codec, and -resume or
// -scrub under a different -codec fails fast with a one-line diagnosis
// naming the codec the sort was started with.
//
// Fault tolerance: -retries N re-attempts transient I/O failures up to N
// times per operation under deterministic exponential backoff;
// -op-deadline bounds every block I/O (a stuck transfer is abandoned,
// classified retryable, and charged to the disk's error budget);
// -hedge-after re-issues straggling reads and takes the first result; -v
// prints the resulting per-disk latency statistics (EWMA and windowed
// p99) after the sort;
// -checkpoint persists a recovery manifest after run formation and every
// merge pass (with -backend file -dir DIR the disk files survive the
// process, so a killed sort can be continued); -resume continues such an
// interrupted sort from its last completed pass; -scrub audits every
// block checksum under -dir and exits non-zero if corruption is found,
// without sorting anything. A failed sort exits with a one-line
// diagnosis naming the operation, disk, block and attempt count.
//
// The profile flags capture pprof data for the sort itself: -cpuprofile
// starts CPU profiling immediately before the sort and stops it right
// after (input generation and output verification are outside the
// window); -memprofile writes an allocation profile taken right after the
// sort completes. Inspect either with `go tool pprof`.
//
// Example — compare SRM and DSM on the same input:
//
//	srmsort -n 2000000 -d 16 -b 64 -k 4 -alg srm -model 1996
//	srmsort -n 2000000 -d 16 -b 64 -k 4 -alg dsm -model 1996
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	"srmsort"
	"srmsort/internal/pdisk"
)

func main() {
	var (
		n        = flag.Int("n", 1_000_000, "number of records to sort")
		d        = flag.Int("d", 8, "number of disks D")
		b        = flag.Int("b", 64, "block size B in records")
		k        = flag.Int("k", 4, "memory parameter k (M = (2k+4)DB + kD^2)")
		mem      = flag.Int("mem", 0, "memory M in records (overrides -k)")
		alg      = flag.String("alg", "srm", "algorithm: srm, srm-det, dsm, psv")
		input    = flag.String("input", "random", "input distribution: random, sorted, reverse, dups")
		runform  = flag.String("runform", "load", "run formation: load (half memoryloads), rs (replacement selection)")
		model    = flag.String("model", "none", "disk time model: none, 1996, modern")
		backend  = flag.String("backend", "mem", "storage backend: mem (in-process), file (real disk files)")
		codec    = flag.String("codec", "fixed16", "record codec: fixed16, varlen, varlen+flate")
		dir      = flag.String("dir", "", "directory for -backend file disk files (default: fresh temp dir)")
		file     = flag.Bool("file", false, "deprecated alias for -backend file")
		seed     = flag.Int64("seed", 1, "random seed (placement and input)")
		workers  = flag.Int("workers", 0, "goroutines for a pass's merges (SRM only; -1 = GOMAXPROCS)")
		cores    = flag.Int("cores", 0, "cores per sort step: chunked run formation and sharded merging (0 = GOMAXPROCS, 1 = serial; identical output)")
		async    = flag.Bool("async", false, "overlap I/O with merging (SRM/DSM; identical output and I/O statistics)")
		verify   = flag.Bool("verify", true, "verify the output is sorted")
		inFile   = flag.String("infile", "", "read wire-format records from this file instead of generating (-n ignored)")
		outFile  = flag.String("outfile", "", "write the sorted wire-format records to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sort to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile taken after the sort to this file")
		retries  = flag.Int("retries", 0, "re-attempt transient I/O failures up to N times per operation (0 = fail on first error)")
		deadline = flag.Duration("op-deadline", 0, "abandon any block I/O still in flight after this long (retryable; 0 = no deadline)")
		hedge    = flag.Duration("hedge-after", 0, "re-issue a straggling read after this long and take the first result (0 = no hedging)")
		verbose  = flag.Bool("v", false, "also print per-disk latency/health statistics (needs -op-deadline or -hedge-after)")
		ckpt     = flag.Bool("checkpoint", false, "persist a recovery manifest after every completed merge pass")
		resume   = flag.Bool("resume", false, "continue an interrupted checkpointed sort from its last completed pass (implies -checkpoint)")
		scrub    = flag.Bool("scrub", false, "audit every block checksum under -dir and exit (requires -backend file)")
	)
	flag.Parse()

	cfg := srmsort.Config{
		D: *d, B: *b, K: *k, Memory: *mem,
		Seed: *seed, Dir: *dir, Workers: *workers, Cores: *cores, Async: *async,
		Codec: *codec,
	}
	var varlen bool
	switch *codec {
	case "fixed16":
	case "varlen", "varlen+flate":
		varlen = true
	default:
		fatal("unknown -codec %q (want fixed16, varlen or varlen+flate)", *codec)
	}
	switch {
	case *backend == "file" || *file:
		cfg.Backend = srmsort.FileBackend
	case *backend == "mem":
		cfg.Backend = srmsort.MemBackend
	default:
		fatal("unknown -backend %q", *backend)
	}
	switch *alg {
	case "srm":
		cfg.Algorithm = srmsort.SRM
	case "srm-det":
		cfg.Algorithm = srmsort.SRMDeterministic
	case "dsm":
		cfg.Algorithm = srmsort.DSM
	case "psv":
		cfg.Algorithm = srmsort.PSV
	default:
		fatal("unknown -alg %q", *alg)
	}
	switch *runform {
	case "load":
		cfg.RunFormation = srmsort.HalfMemoryLoads
	case "rs":
		cfg.RunFormation = srmsort.ReplacementSelection
	default:
		fatal("unknown -runform %q", *runform)
	}
	switch *model {
	case "none":
	case "1996":
		cfg.Model = srmsort.Mid1990sDisk()
	case "modern":
		cfg.Model = srmsort.ModernDisk()
	default:
		fatal("unknown -model %q", *model)
	}
	if *retries > 0 {
		policy := srmsort.DefaultRetryPolicy()
		policy.MaxAttempts = *retries
		policy.Seed = *seed
		cfg.Retry = &policy
	}
	if *deadline > 0 || *hedge > 0 {
		cfg.Deadline = &srmsort.DeadlinePolicy{
			OpDeadline: *deadline,
			HedgeAfter: *hedge,
		}
		if *deadline > 0 && cfg.Retry == nil {
			// A deadline without a retry layer would surface every
			// timeout to the caller; give abandoned ops their re-issue.
			policy := srmsort.DefaultRetryPolicy()
			policy.Seed = *seed
			cfg.Retry = &policy
		}
	}
	cfg.Checkpoint = *ckpt || *resume

	if err := validateRecovery(cfg.Backend, *dir, *codec, *resume, *scrub); err != nil {
		fatal("%v", err)
	}

	if *scrub {
		rep, err := srmsort.Scrub(cfg)
		if err != nil {
			fatal("scrub: %v", err)
		}
		fmt.Printf("scrub: %d blocks audited, %d corrupt\n", rep.Blocks, len(rep.Corrupt))
		for _, addr := range rep.Corrupt {
			fmt.Printf("  corrupt block %v\n", addr)
		}
		if len(rep.Corrupt) > 0 {
			os.Exit(1)
		}
		return
	}

	var records []srmsort.Record
	var vrecords []srmsort.VarRecord
	switch {
	case *inFile != "":
		f, err := os.Open(*inFile)
		if err != nil {
			fatal("%v", err)
		}
		if varlen {
			vrecords, err = srmsort.ReadVarRecords(f)
			*n = len(vrecords)
		} else {
			records, err = srmsort.ReadRecords(f)
			*n = len(records)
		}
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
	case varlen:
		vrecords = generateVar(*input, *n, *seed)
	default:
		records = generate(*input, *n, *seed)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("-cpuprofile: %v", err)
		}
	}
	start := time.Now()
	var out []srmsort.Record
	var vout []srmsort.VarRecord
	var stats srmsort.Stats
	var err error
	switch {
	case varlen && *resume:
		vout, stats, err = srmsort.ResumeVar(vrecords, cfg)
	case varlen:
		vout, stats, err = srmsort.SortVar(vrecords, cfg)
	case *resume:
		out, stats, err = srmsort.Resume(records, cfg)
	default:
		out, stats, err = srmsort.Sort(records, cfg)
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fatal("sort failed: %s", diagnose(err))
	}
	elapsed := time.Since(start)
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal("%v", err)
		}
		runtime.GC() // flush pending frees so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("-memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
	}

	if *verify {
		sorted := true
		if varlen {
			sorted = slices.IsSortedFunc(vout, func(a, b srmsort.VarRecord) int {
				if c := bytes.Compare(a.Key, b.Key); c != 0 {
					return c
				}
				return bytes.Compare(a.Payload, b.Payload)
			})
		} else {
			sorted = slices.IsSortedFunc(out, func(a, b srmsort.Record) int {
				switch {
				case a.Key < b.Key:
					return -1
				case a.Key > b.Key:
					return 1
				}
				return 0
			})
		}
		if !sorted {
			fatal("output is NOT sorted")
		}
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal("%v", err)
		}
		if varlen {
			err = srmsort.WriteVarRecords(f, vout)
		} else {
			err = srmsort.WriteRecords(f, out)
		}
		if err != nil {
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
	}

	fmt.Printf("%s sorted %d records   (D=%d, B=%d, M=%d records, R=%d, %s backend)\n",
		stats.Algorithm, *n, stats.D, stats.B, stats.M, stats.R, cfg.Backend)
	fmt.Printf("  initial runs:        %d (%s)\n", stats.InitialRuns, *runform)
	fmt.Printf("  merge passes:        %d\n", stats.MergePasses)
	fmt.Printf("  run formation I/O:   %d reads + %d writes\n",
		stats.RunFormationReads, stats.RunFormationWrites)
	fmt.Printf("  merge I/O:           %d reads + %d writes\n",
		stats.MergeReads, stats.MergeWrites)
	fmt.Printf("  total I/O ops:       %d  (bandwidth minimum per pass: %d)\n",
		stats.TotalOps(), (*n+*d**b-1)/(*d**b))
	fmt.Printf("  parallelism:         %.2f read / %.2f write blocks per op (D=%d)\n",
		stats.ReadParallelism, stats.WriteParallelism, *d)
	fmt.Printf("  disk balance:        %.2f read / %.2f write (1.00 = even)\n",
		stats.ReadBalance, stats.WriteBalance)
	switch stats.Algorithm {
	case srmsort.SRM, srmsort.SRMDeterministic:
		fmt.Printf("  virtual flushes:     %d ops, %d blocks forgotten, %d re-read\n",
			stats.Flushes, stats.BlocksFlushed, stats.BlocksReread)
	case srmsort.PSV:
		fmt.Printf("  transposition I/O:   %d ops\n", stats.TransposeOps)
	}
	if stats.SimTime > 0 {
		fmt.Printf("  modelled disk time:  %.2f s (%s disks)\n", stats.SimTime, *model)
	}
	fmt.Printf("  host wall clock:     %v\n", elapsed.Round(time.Millisecond))
	if stats.Health != nil {
		h := stats.Health
		fmt.Printf("  I/O health:          %d hedged reads (%d won), %d deadline timeouts\n",
			h.HedgedReads, h.HedgeWins, h.Timeouts)
		if *verbose {
			for _, dh := range h.PerDisk {
				fmt.Printf("    disk %2d: %7d ops, %3d timeouts, latency %.0f µs EWMA / %.0f µs p99\n",
					dh.Disk, dh.Ops, dh.Timeouts, dh.EWMAMicros, dh.P99Micros)
			}
		}
	} else if *verbose {
		fmt.Printf("  I/O health:          not tracked (set -op-deadline or -hedge-after)\n")
	}
}

func generate(kind string, n int, seed int64) []srmsort.Record {
	rng := rand.New(rand.NewSource(seed + 1000))
	out := make([]srmsort.Record, n)
	switch kind {
	case "random":
		for i := range out {
			out[i] = srmsort.Record{Key: rng.Uint64() >> 1, Val: uint64(i)}
		}
	case "sorted":
		key := uint64(0)
		for i := range out {
			key += uint64(rng.Intn(1000) + 1)
			out[i] = srmsort.Record{Key: key, Val: uint64(i)}
		}
	case "reverse":
		key := uint64(n) * 1000
		for i := range out {
			key -= uint64(rng.Intn(1000) + 1)
			out[i] = srmsort.Record{Key: key, Val: uint64(i)}
		}
	case "dups":
		for i := range out {
			out[i] = srmsort.Record{Key: uint64(rng.Intn(100)), Val: uint64(i)}
		}
	default:
		fatal("unknown -input %q", kind)
	}
	return out
}

// generateVar is generate for the varlen codecs: keys are 4–23 bytes
// from a four-letter alphabet (forcing shared prefixes, the case that
// separates content comparison from prefix comparison), payloads 0–31
// bytes.
func generateVar(kind string, n int, seed int64) []srmsort.VarRecord {
	rng := rand.New(rand.NewSource(seed + 2000))
	out := make([]srmsort.VarRecord, n)
	randKey := func() []byte {
		k := make([]byte, 4+rng.Intn(20))
		for i := range k {
			k[i] = byte('a' + rng.Intn(4))
		}
		return k
	}
	payload := func(i int) []byte {
		p := make([]byte, rng.Intn(32))
		for j := range p {
			p[j] = byte(i + j)
		}
		return p
	}
	switch kind {
	case "random", "sorted", "reverse":
		for i := range out {
			out[i] = srmsort.VarRecord{Key: randKey(), Payload: payload(i)}
		}
		if kind != "random" {
			slices.SortFunc(out, func(a, b srmsort.VarRecord) int { return bytes.Compare(a.Key, b.Key) })
			if kind == "reverse" {
				slices.Reverse(out)
			}
		}
	case "dups":
		keys := [][]byte{[]byte("aa"), []byte("aab"), []byte("b"), []byte("bcbc"), []byte("dddd")}
		for i := range out {
			out[i] = srmsort.VarRecord{Key: keys[rng.Intn(len(keys))], Payload: payload(i)}
		}
	default:
		fatal("unknown -input %q", kind)
	}
	return out
}

// validateRecovery cross-checks the recovery flags before any work
// happens, so a misuse fails in milliseconds with advice instead of
// silently sorting from scratch (-resume on a fresh mem backend used to
// do exactly that) or failing deep inside the store layer.
func validateRecovery(backend srmsort.Backend, dir, codec string, resume, scrub bool) error {
	if !resume && !scrub {
		return nil
	}
	flagName := "-resume"
	if scrub {
		flagName = "-scrub"
	}
	if backend != srmsort.FileBackend {
		return fmt.Errorf("%s needs on-disk state: add -backend file -dir DIR (the mem backend leaves nothing to %s)",
			flagName, strings.TrimPrefix(flagName, "-"))
	}
	if dir == "" {
		return fmt.Errorf("%s needs -dir DIR naming the sort's disk directory", flagName)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return fmt.Errorf("%s: disk directory %q does not exist", flagName, dir)
	}
	manifest := filepath.Join(dir, "manifest.json")
	if _, err := os.Stat(manifest); err != nil {
		if resume {
			return fmt.Errorf("-resume: no checkpoint manifest under %q — nothing to resume; rerun with -checkpoint (without -resume) to start a recoverable sort", dir)
		}
		return nil // scrubbing an uncheckpointed store is fine
	}
	// The manifest names the codec the sort's blocks are encoded under;
	// resuming or scrubbing with a different -codec would misread every
	// block, so fail in milliseconds with the fix spelled out.
	data, err := os.ReadFile(manifest)
	if err != nil {
		return fmt.Errorf("%s: reading checkpoint manifest: %v", flagName, err)
	}
	var man struct{ Codec string }
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("%s: corrupt checkpoint manifest under %q: %v", flagName, dir, err)
	}
	if man.Codec == "" {
		man.Codec = "fixed16"
	}
	if man.Codec != codec {
		return fmt.Errorf("%s: the checkpoint under %q was written with codec %s, but -codec says %s — rerun with -codec %s",
			flagName, dir, man.Codec, codec, man.Codec)
	}
	return nil
}

// diagnose renders a failed sort's error as one line naming, when known,
// the failing operation, disk, block address and attempt count — what an
// operator needs before deciding between -resume and replacing hardware.
func diagnose(err error) string {
	var parts []string
	var ioe *pdisk.IOError
	if errors.As(err, &ioe) {
		parts = append(parts, fmt.Sprintf("%s on disk %d at block %v", ioe.Op, ioe.Addr.Disk, ioe.Addr))
	}
	var rerr *pdisk.RetryError
	if errors.As(err, &rerr) {
		parts = append(parts, fmt.Sprintf("gave up after %d attempt(s)", rerr.Attempts))
	}
	switch {
	case errors.Is(err, pdisk.ErrCorrupt):
		parts = append(parts, "on-disk corruption: run -scrub, then -resume to rebuild from the last checkpoint")
	case errors.Is(err, pdisk.ErrDiskOffline):
		parts = append(parts, "disk exceeded its error budget and was taken offline")
	case errors.Is(err, pdisk.ErrDeadline):
		parts = append(parts, "operation exceeded its -op-deadline; raise the deadline or add -retries so timeouts are re-issued")
	}
	if len(parts) == 0 {
		return err.Error()
	}
	return fmt.Sprintf("%v [%s]", err, strings.Join(parts, "; "))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "srmsort: "+format+"\n", args...)
	os.Exit(1)
}
