// Command sortd runs srmsort as a service: an HTTP daemon that accepts
// many sort jobs concurrently, admission-controls them against one
// server-wide memory budget, shares per-disk bandwidth across all
// running jobs, and makes the library's fault tolerance tenant-visible —
// every job checkpoints under its own directory, so a killed server
// resumes all incomplete jobs on restart and finished results remain
// fetchable.
//
// Usage:
//
//	sortd -addr :8080 -root /var/lib/sortd -budget 4000000
//	      [-core-budget N] [-gate-width 2] [-gate-disks 64] [-retries 5]
//	      [-max-attempts 3] [-op-deadline DUR] [-hedge-after DUR]
//	      [-drain 5s] [-d 8] [-b 64] [-k 4] [-alg srm] [-seed 1]
//	      [-async] [-workers N] [-cores N]
//
// The -d/-b/-k/-alg/... flags are per-job defaults; each submission may
// override them with query parameters. Submit wire-format records
// (16 bytes little-endian per record: 8 key + 8 payload):
//
//	curl -s --data-binary @input.rec 'localhost:8080/jobs?d=8&b=64&k=4'
//	curl -s localhost:8080/jobs/job-000001            # status + progress
//	curl -s localhost:8080/jobs/job-000001/result -o sorted.rec
//	curl -s -X DELETE localhost:8080/jobs/job-000001  # cancel
//
// -op-deadline and -hedge-after give every job's store the deadline/
// hedging layer (stuck transfers abandoned and retried, straggling reads
// hedged); the accumulated per-disk latency ledger appears as io_health
// in GET /stats.
//
// On SIGTERM/SIGINT the server drains: it refuses new submissions (503),
// waits up to -drain for in-flight jobs to finish — each checkpoints
// after every merge pass regardless — then severs whatever remains and
// exits. Kill the process mid-flight (or let the drain window expire)
// and start it again on the same -root: the incomplete jobs resume from
// their last checkpointed merge pass.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srmsort"
	"srmsort/internal/jobs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		root        = flag.String("root", "", "directory jobs persist under (empty = volatile: results die with the process)")
		budget      = flag.Int("budget", 4_000_000, "server-wide working-memory budget in records; each job's M is reserved from it")
		coreBudget  = flag.Int("core-budget", 0, "server-wide core budget; each job's cores are reserved from it with its memory (0 = GOMAXPROCS)")
		gateWidth   = flag.Int("gate-width", 2, "per-disk in-flight transfer bound shared by all jobs (-1 = unlimited)")
		gateDisks   = flag.Int("gate-disks", 64, "disks the shared gate covers (largest d= any job may request)")
		retries     = flag.Int("retries", 5, "re-attempt transient I/O failures up to N times per operation (0 = fail on first error)")
		maxAttempts = flag.Int("max-attempts", 3, "sort attempts per job (first run + checkpoint resumes) before it fails")
		deadline    = flag.Duration("op-deadline", 0, "abandon any job block I/O still in flight after this long (retryable; 0 = no deadline)")
		hedge       = flag.Duration("hedge-after", 0, "re-issue a job's straggling read after this long and take the first result (0 = no hedging)")
		drain       = flag.Duration("drain", 5*time.Second, "on SIGTERM, wait this long for in-flight jobs before severing them (0 = abrupt)")
		d           = flag.Int("d", 8, "default disks per job")
		b           = flag.Int("b", 64, "default block size in records")
		k           = flag.Int("k", 4, "default memory parameter k")
		mem         = flag.Int("mem", 0, "default memory M in records (overrides -k)")
		alg         = flag.String("alg", "srm", "default algorithm: srm, srm-det, dsm, psv")
		seed        = flag.Int64("seed", 1, "default placement seed")
		async       = flag.Bool("async", false, "default: overlap I/O with merging")
		workers     = flag.Int("workers", 0, "default merge workers (-1 = GOMAXPROCS)")
		cores       = flag.Int("cores", 1, "default cores per job's sort steps (identical output at any value)")
		codec       = flag.String("codec", "fixed16", "default record codec: fixed16, varlen, varlen+flate")
	)
	flag.Parse()

	opts := jobs.Options{
		Root:         *root,
		MemoryBudget: *budget,
		CoreBudget:   *coreBudget,
		GateWidth:    *gateWidth,
		GateDisks:    *gateDisks,
		MaxAttempts:  *maxAttempts,
		Defaults: jobs.Spec{
			Algorithm: *alg, D: *d, B: *b, K: *k, Memory: *mem,
			Seed: *seed, Async: *async, Workers: *workers, Cores: *cores,
			Codec: *codec,
		},
		Logf: log.Printf,
	}
	if *retries > 0 {
		policy := srmsort.DefaultRetryPolicy()
		policy.MaxAttempts = *retries
		policy.Seed = *seed
		opts.Retry = &policy
	}
	if *deadline > 0 || *hedge > 0 {
		opts.Deadline = &srmsort.DeadlinePolicy{
			OpDeadline: *deadline,
			HedgeAfter: *hedge,
		}
	}

	m, err := jobs.NewManager(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortd: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler: jobs.NewHandler(m),
		// A client that opens a connection and never sends its headers
		// must not pin a drain forever.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Teardown drains first: new submissions get 503, in-flight jobs get
	// up to -drain to finish (each checkpoints after every merge pass
	// regardless, so an expired window loses nothing — the next sortd
	// over the same -root resumes whatever was severed).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("sortd: %v: draining (up to %v; new submissions refused)", s, *drain)
		if m.Drain(*drain) {
			log.Printf("sortd: drained clean")
		} else {
			log.Printf("sortd: drain window expired; severing remaining jobs (they resume on restart)")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		srv.Shutdown(ctx)
		cancel()
		m.Kill()
	}()

	mode := "volatile (no -root: results die with the process)"
	if *root != "" {
		mode = fmt.Sprintf("durable under %s", *root)
	}
	log.Printf("sortd: listening on %s, budget %d records, %s", ln.Addr(), *budget, mode)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "sortd: %v\n", err)
		os.Exit(1)
	}
	m.Kill()
}
