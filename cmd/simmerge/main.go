// Command simmerge runs one SRM merge on average-case inputs (the paper's
// Section 9.3 experiment) and prints the detailed I/O behaviour: read
// operations, the overhead factor v, flush activity and memory usage.
//
// Usage:
//
//	simmerge -d 10 -k 10 -blocks 1000 -b 16 [-placement random|staggered|fixed]
//	         [-trials 3] [-seed 7]
//
// The paper's Table 3 corresponds to -placement random with runs of 1000
// blocks.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"srmsort/internal/occupancy"
	"srmsort/internal/pdisk"
	"srmsort/internal/record"
	"srmsort/internal/runio"
	"srmsort/internal/sim"
	"srmsort/internal/srm"
	"srmsort/internal/trace"
)

func main() {
	var (
		d         = flag.Int("d", 10, "number of disks D")
		k         = flag.Int("k", 10, "merge order parameter k (R = kD runs)")
		blocks    = flag.Int("blocks", 200, "blocks per run (paper: 1000)")
		b         = flag.Int("b", 16, "block size B in records")
		placement = flag.String("placement", "random", "starting disks: random, staggered, fixed")
		trials    = flag.Int("trials", 1, "number of independent merges to average")
		seed      = flag.Int64("seed", 7, "random seed")
		real      = flag.Bool("real", false, "run the record-moving merger (package srm) instead of the block-level simulator")
		showTrace = flag.Bool("trace", false, "with -real: print the full event trace (keep parameters small)")
		phases    = flag.Bool("phases", false, "print the phase-load analysis (Lemmas 6-8 vs occupancy theory)")
		channel   = flag.Int("channel", 0, "I/O channel width in blocks per op (hybrid D'-disk model; 0 = D)")
	)
	flag.Parse()

	if *real {
		realMerge(*d, *k, *blocks, *b, *placement, *seed, *showTrace)
		return
	}
	if *phases {
		phaseAnalysis(*d, *k, *blocks, *b, *placement, *seed)
		return
	}
	if *channel == 0 {
		*channel = *d
	}

	numRuns := *k * *d
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("SRM merge simulation: R = kD = %d runs x %d blocks (B=%d) over D=%d disks, %s placement\n",
		numRuns, *blocks, *b, *d, *placement)

	var sumV float64
	for t := 0; t < *trials; t++ {
		runs := sim.GenerateAverageCase(rng, *d, numRuns, *blocks, *b)
		for i, r := range runs {
			switch *placement {
			case "random":
				r.StartDisk = rng.Intn(*d)
			case "staggered":
				r.StartDisk = i % *d
			case "fixed":
				r.StartDisk = 0
			default:
				fmt.Fprintf(os.Stderr, "simmerge: unknown -placement %q\n", *placement)
				os.Exit(1)
			}
		}
		stats, err := sim.MergeChannel(runs, *d, *channel, numRuns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simmerge:", err)
			os.Exit(1)
		}
		v := stats.OverheadV(*channel)
		sumV += v
		fmt.Printf("trial %d:\n", t+1)
		if *channel < *d {
			fmt.Printf("  hybrid model:      D'=%d disks share a %d-block channel\n", *d, *channel)
		}
		fmt.Printf("  input blocks:      %d   (bandwidth minimum %d read ops)\n",
			stats.TotalBlocks, (stats.TotalBlocks+*channel-1)/(*channel))
		fmt.Printf("  read ops:          %d   (I_0 = %d initial)\n", stats.ReadOps, stats.InitialReads)
		fmt.Printf("  overhead v:        %.4f\n", v)
		fmt.Printf("  write ops:         %d   (perfect parallelism)\n", stats.WriteOps)
		fmt.Printf("  virtual flushes:   %d ops, %d blocks, %d re-read\n",
			stats.Flushes, stats.BlocksFlushed, stats.BlocksReread)
		fmt.Printf("  peak prefetch:     %d blocks of the R+2D = %d budget\n",
			stats.MaxPrefetched, numRuns+2**d)
	}
	if *trials > 1 {
		fmt.Printf("mean overhead v over %d trials: %.4f\n", *trials, sumV/float64(*trials))
	}
}

// phaseAnalysis empirically connects Lemma 6/8 to the occupancy theory of
// Section 7: it generates one average-case merge input, computes the
// per-phase loads L'_i (each a dependent-occupancy realisation of R balls
// in D bins), and compares their mean with a classical-occupancy Monte
// Carlo estimate and the Theorem 2 bound; finally it runs the simulated
// merge and checks the measured reads against the I_0 + sum L'_i bound.
func phaseAnalysis(d, k, blocks, b int, placement string, seed int64) {
	numRuns := k * d
	rng := rand.New(rand.NewSource(seed))
	runs := sim.GenerateAverageCase(rng, d, numRuns, blocks, b)
	for i, r := range runs {
		switch placement {
		case "random":
			r.StartDisk = rng.Intn(d)
		case "staggered":
			r.StartDisk = i % d
		case "fixed":
			r.StartDisk = 0
		default:
			fmt.Fprintf(os.Stderr, "simmerge: unknown -placement %q\n", placement)
			os.Exit(1)
		}
	}
	i0, loads := sim.PhaseLoads(runs, d)
	var sum int64
	max := 0
	hist := map[int]int{}
	for _, l := range loads {
		sum += int64(l)
		hist[l]++
		if l > max {
			max = l
		}
	}
	mean := float64(sum) / float64(len(loads))
	mc := occupancy.EstimateClassical(numRuns, d, 4000, seed+5)
	bound := occupancy.BoundForBalls(float64(k), d)
	fmt.Printf("phase analysis: R = kD = %d runs x %d blocks over D=%d disks (%s placement)\n",
		numRuns, blocks, d, placement)
	fmt.Printf("  phases:                      %d (R blocks each)\n", len(loads))
	fmt.Printf("  I_0 (initial reads):         %d\n", i0)
	fmt.Printf("  mean phase load E[L'_i]:     %.3f   (perfect balance: %d)\n", mean, k)
	fmt.Printf("  classical occupancy C(R,D):  %s (conjectured upper bound on E[L'_i])\n", mc)
	fmt.Printf("  Theorem 2 bound:             %.3f\n", bound)
	fmt.Printf("  load histogram:")
	for l := 0; l <= max; l++ {
		if hist[l] > 0 {
			fmt.Printf("  %d:%d", l, hist[l])
		}
	}
	fmt.Println()
	stats, err := sim.Merge(runs, d, numRuns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simmerge:", err)
		os.Exit(1)
	}
	phaseBound := sim.PhaseBound(runs, d)
	fmt.Printf("  measured reads:              %d\n", stats.ReadOps)
	fmt.Printf("  Lemma 6/8 bound I_0+sum L'i: %d   (holds: %v)\n",
		phaseBound, stats.ReadOps <= phaseBound)
}

// realMerge runs the record-moving merger on a small average-case input,
// with the online invariant checker attached, optionally rendering the full
// schedule trace.
func realMerge(d, k, blocks, b int, placement string, seed int64, showTrace bool) {
	numRuns := k * d
	sys, err := pdisk.NewSystem(pdisk.Config{D: d, B: b})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simmerge:", err)
		os.Exit(1)
	}
	g := record.NewGenerator(seed)
	recRuns := g.UniformPartitionRuns(numRuns, blocks*b)
	rng := rand.New(rand.NewSource(seed))
	descs := make([]*runio.Run, numRuns)
	for i, rs := range recRuns {
		start := 0
		switch placement {
		case "random":
			start = rng.Intn(d)
		case "staggered":
			start = i % d
		case "fixed":
		default:
			fmt.Fprintf(os.Stderr, "simmerge: unknown -placement %q\n", placement)
			os.Exit(1)
		}
		descs[i], err = runio.WriteRun(sys, i, start, record.ToRec16(rs))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simmerge:", err)
			os.Exit(1)
		}
	}
	checker := trace.NewChecker(d)
	recorder := &trace.Recorder{}
	var sink trace.Sink = checker
	if showTrace {
		sink = trace.Multi(checker, recorder)
	}
	sys.ResetStats()
	_, stats, err := srm.MergeTraced[record.Rec16](sys, descs, numRuns, numRuns, 0, sink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simmerge:", err)
		os.Exit(1)
	}
	if showTrace {
		if err := recorder.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "simmerge:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("real SRM merge: R=%d runs x %d blocks (B=%d) over D=%d disks, %s placement\n",
		numRuns, blocks, b, d, placement)
	total := numRuns * blocks
	fmt.Printf("  read ops:        %d (I_0=%d, bandwidth minimum %d)\n",
		stats.ReadOps, stats.InitialReads, (total+d-1)/d)
	fmt.Printf("  overhead v:      %.4f\n", float64(stats.ReadOps)*float64(d)/float64(total))
	fmt.Printf("  write ops:       %d\n", stats.WriteOps)
	fmt.Printf("  virtual flushes: %d ops, %d blocks, %d re-read\n",
		stats.Flushes, stats.BlocksFlushed, stats.BlocksReread)
	if err := checker.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "simmerge: INVARIANT VIOLATION:", err)
		os.Exit(1)
	}
	fmt.Println("  scheduling invariants: all checks passed ✓")
}
