// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark line, so perf numbers can be archived
// (BENCH_sort.json) and diffed across commits by machines instead of
// eyeballs.
//
// Usage:
//
//	go test -run='^$' -bench=SortEndToEnd -benchmem . | benchjson -o BENCH_sort.json
//	benchjson -o BENCH_sort.json bench_output.txt
//	benchjson -diff BENCH_sort.json bench_sort_output.txt
//
// Every `value unit` pair after the iteration count is kept verbatim under
// its unit name ("ns/op", "B/op", "allocs/op", "ns/rec", ...), so custom
// b.ReportMetric units flow through unchanged.
//
// With -diff, the input (fresh run, text or JSON) is compared per cell
// against the given baseline JSON: ns/rec and B/rec deltas for every
// benchmark present in both, plus the cells only one side has. This is
// `make bench-diff` — the question it answers is "what did this change do
// to the committed perf trajectory" without hand-aligning two files.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// newTabWriter returns the column writer the diff table is rendered with.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
}

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	diff := flag.String("diff", "", "baseline JSON to compare the input against (prints per-cell deltas instead of JSON)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	results, err := parseAny(in)
	if err != nil {
		fatal(err)
	}

	if *diff != "" {
		base, err := loadJSON(*diff)
		if err != nil {
			fatal(err)
		}
		printDiff(os.Stdout, base, results)
		return
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parseAny reads benchmark results as either `go test -bench` text or a
// benchjson JSON array (detected by the leading non-space byte), so -diff
// accepts a raw bench log and an archived JSON interchangeably.
func parseAny(r io.Reader) ([]result, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimSpace(raw); len(trimmed) > 0 && trimmed[0] == '[' {
		var results []result
		if err := json.Unmarshal(trimmed, &results); err != nil {
			return nil, err
		}
		if len(results) == 0 {
			return nil, fmt.Errorf("no benchmark results in JSON input")
		}
		return results, nil
	}
	return parse(bytes.NewReader(raw))
}

// loadJSON reads an archived benchjson file.
func loadJSON(path string) ([]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var results []result
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return results, nil
}

// diffMetrics are the per-cell figures bench-diff reports, in print
// order. ns/rec and B/rec are the headline numbers EXPERIMENTS.md tracks;
// cells without them (the micro-benchmarks) fall back to ns/op.
var diffMetrics = []string{"ns/rec", "B/rec", "allocs/rec", "ns/op"}

// printDiff writes a per-cell comparison of fresh results against the
// baseline. Delta percentages are fresh relative to baseline: negative is
// faster/smaller.
func printDiff(w io.Writer, base, fresh []result) {
	baseBy := make(map[string]result, len(base))
	for _, r := range base {
		baseBy[r.Name] = r
	}
	freshBy := make(map[string]result, len(fresh))
	for _, r := range fresh {
		freshBy[r.Name] = r
	}

	var onlyBase, onlyFresh []string
	for _, r := range base {
		if _, ok := freshBy[r.Name]; !ok {
			onlyBase = append(onlyBase, r.Name)
		}
	}

	tw := newTabWriter(w)
	fmt.Fprintf(tw, "benchmark\tmetric\tbaseline\tcurrent\tdelta\n")
	for _, r := range fresh {
		b, ok := baseBy[r.Name]
		if !ok {
			onlyFresh = append(onlyFresh, r.Name)
			continue
		}
		shown := false
		for _, m := range diffMetrics {
			bv, bok := b.Metrics[m]
			fv, fok := r.Metrics[m]
			if !bok || !fok {
				continue
			}
			// Once ns/rec exists, ns/op is redundant (it is n x ns/rec).
			if m == "ns/op" && shown {
				continue
			}
			shown = true
			fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%s\n", r.Name, m, bv, fv, deltaPct(bv, fv))
		}
	}
	tw.Flush()
	sort.Strings(onlyBase)
	sort.Strings(onlyFresh)
	for _, n := range onlyBase {
		fmt.Fprintf(w, "only in baseline: %s\n", n)
	}
	for _, n := range onlyFresh {
		fmt.Fprintf(w, "only in current run: %s\n", n)
	}
}

// deltaPct formats the relative change from baseline to fresh.
func deltaPct(base, fresh float64) string {
	if base == 0 {
		if fresh == 0 {
			return "0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(fresh-base)/base)
}

// parse extracts every benchmark result line from r. Non-benchmark lines
// (headers, PASS, ok) are skipped; malformed benchmark lines are errors.
func parse(r io.Reader) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iteration count in %q: %v", line, err)
		}
		res := result{
			Name:       fields[0],
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("metric value in %q: %v", line, err)
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
