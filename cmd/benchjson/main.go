// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark line, so perf numbers can be archived
// (BENCH_sort.json) and diffed across commits by machines instead of
// eyeballs.
//
// Usage:
//
//	go test -run='^$' -bench=SortEndToEnd -benchmem . | benchjson -o BENCH_sort.json
//	benchjson -o BENCH_sort.json bench_output.txt
//
// Every `value unit` pair after the iteration count is kept verbatim under
// its unit name ("ns/op", "B/op", "allocs/op", "ns/rec", ...), so custom
// b.ReportMetric units flow through unchanged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	results, err := parse(in)
	if err != nil {
		fatal(err)
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts every benchmark result line from r. Non-benchmark lines
// (headers, PASS, ok) are skipped; malformed benchmark lines are errors.
func parse(r io.Reader) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iteration count in %q: %v", line, err)
		}
		res := result{
			Name:       fields[0],
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("metric value in %q: %v", line, err)
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
