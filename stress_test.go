package srmsort

import "testing"

// Large-scale end-to-end stress: two million records through the full SRM
// pipeline with file-backed disks and parallel pass execution — the
// closest the test suite comes to the library's production configuration.
// Skipped under -short.
func TestStressLargeSortFileBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("large stress sort")
	}
	const n = 2_000_000
	in := benchRecords(n, 1234)
	out, stats, err := Sort(in, Config{
		D: 16, B: 256, K: 4,
		Seed:       9,
		FileBacked: true,
		TempDir:    t.TempDir(),
		Workers:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("output has %d records", len(out))
	}
	for i := 1; i < n; i++ {
		if out[i-1].Key > out[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Sanity on the cost profile: with R=64 and 80 initial runs the
	// sort takes exactly 2 merge passes, and write parallelism stays near
	// D through multi-gigarecord-scale striping.
	if stats.MergePasses != 2 {
		t.Fatalf("merge passes = %d, want 2", stats.MergePasses)
	}
	if stats.WriteParallelism < 15 {
		t.Fatalf("write parallelism %.2f, want near 16", stats.WriteParallelism)
	}
	if stats.ReadBalance > 1.1 {
		t.Fatalf("read balance %.3f, want near 1", stats.ReadBalance)
	}
	t.Logf("stats: %+v", stats)
}
