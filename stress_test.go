package srmsort

import (
	"bytes"
	"math/rand"
	"testing"
)

// Randomized sync-vs-async sweep over duplicate-heavy inputs and many
// (algorithm, D, B) shapes — the fuzz-flavoured cousin of
// TestAsyncEquivalence. (Folded in from the review-stress test.) -short
// trims the seed count.
func TestStressSyncAsyncEquivalence(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(4000)
		in := make([]Record, n)
		for i := range in {
			in[i] = Record{Key: uint64(rng.Intn(200)), Val: uint64(i)} // duplicate-heavy
		}
		for _, alg := range []Algorithm{SRM, SRMDeterministic} {
			for _, d := range []int{2, 3, 4, 5} {
				for _, b := range []int{2, 3, 5} {
					cfg := Config{D: d, B: b, K: 2, Algorithm: alg, Seed: seed}
					syncOut, syncStats, err := Sort(in, cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Async = true
					asyncOut, asyncStats, err := Sort(in, cfg)
					if err != nil {
						t.Fatal(err)
					}
					var sb, ab bytes.Buffer
					if err := WriteRecords(&sb, syncOut); err != nil {
						t.Fatal(err)
					}
					if err := WriteRecords(&ab, asyncOut); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(sb.Bytes(), ab.Bytes()) {
						t.Fatalf("output diverges seed=%d alg=%v D=%d B=%d", seed, alg, d, b)
					}
					if syncStats != asyncStats {
						t.Fatalf("stats diverge seed=%d alg=%v D=%d B=%d\nsync  %+v\nasync %+v",
							seed, alg, d, b, syncStats, asyncStats)
					}
				}
			}
		}
	}
}

// Large-scale end-to-end stress: two million records through the full SRM
// pipeline with file-backed disks and parallel pass execution — the
// closest the test suite comes to the library's production configuration.
// Skipped under -short.
func TestStressLargeSortFileBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("large stress sort")
	}
	const n = 2_000_000
	in := benchRecords(n, 1234)
	out, stats, err := Sort(in, Config{
		D: 16, B: 256, K: 4,
		Seed:    9,
		Backend: FileBackend,
		Dir:     t.TempDir(),
		Workers: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("output has %d records", len(out))
	}
	for i := 1; i < n; i++ {
		if out[i-1].Key > out[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Sanity on the cost profile: with R=64 and 80 initial runs the
	// sort takes exactly 2 merge passes, and write parallelism stays near
	// D through multi-gigarecord-scale striping.
	if stats.MergePasses != 2 {
		t.Fatalf("merge passes = %d, want 2", stats.MergePasses)
	}
	if stats.WriteParallelism < 15 {
		t.Fatalf("write parallelism %.2f, want near 16", stats.WriteParallelism)
	}
	if stats.ReadBalance > 1.1 {
		t.Fatalf("read balance %.3f, want near 1", stats.ReadBalance)
	}
	t.Logf("stats: %+v", stats)
}
