package srmsort

import (
	"bytes"
	"fmt"
	"slices"
	"testing"

	"srmsort/internal/sim"
)

// shapedRecords generates n records with the given sortedness shape
// (internal/sim's presortedness generators), converted to the public
// Record type. Shared by the shape tests here and BenchmarkSortShapes.
func shapedRecords(shape sim.Shape, n int, seed int64) []Record {
	in := sim.GenerateInput(shape, n, seed)
	out := make([]Record, n)
	for i, r := range in {
		out[i] = Record{Key: uint64(r.Key), Val: r.Val}
	}
	return out
}

// shapedVarRecords derives a variable-length input from the same shaped
// key sequence: each key becomes a decimal string whose width varies with
// the key, so lexicographic order differs from numeric order and prefix
// ties occur — the varlen comparator has to work for the sort to.
func shapedVarRecords(shape sim.Shape, n int, seed int64) []VarRecord {
	in := sim.GenerateInput(shape, n, seed)
	out := make([]VarRecord, n)
	for i, r := range in {
		width := 6 + int(r.Key%14) // 6..19 digit keys
		out[i] = VarRecord{
			Key:     []byte(fmt.Sprintf("%0*d", width, uint64(r.Key)%1_000_000)),
			Payload: []byte(fmt.Sprintf("p%d", r.Val%97)),
		}
	}
	return out
}

// TestSortInputShapes runs every algorithm over every sortedness shape —
// near-sorted, reversed-runs, the adversarial up-down zigzag — and
// byte-compares against an in-memory reference sort. The shapes are the
// inputs the run-formation experiments (ROADMAP 5a) will sweep; this
// pins that every engine sorts them correctly today.
func TestSortInputShapes(t *testing.T) {
	const n = 4000
	for _, shape := range sim.Shapes() {
		t.Run(shape.String(), func(t *testing.T) {
			in := shapedRecords(shape, n, 19)
			want := slices.Clone(in)
			slices.SortFunc(want, func(a, b Record) int {
				if a.Key != b.Key {
					if a.Key < b.Key {
						return -1
					}
					return 1
				}
				return 0 // keys are distinct by construction
			})
			for _, alg := range []Algorithm{SRM, SRMDeterministic, DSM, PSV} {
				out, _, err := Sort(in, Config{D: 4, B: 8, K: 3, Algorithm: alg, Seed: 5})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				if !slices.Equal(out, want) {
					t.Fatalf("%v: output differs from reference on %s input", alg, shape)
				}
			}
		})
	}
}

// TestSortVarInputShapes is the varlen wing: the same shaped key
// sequences carried as variable-length records, sorted under both varlen
// codecs and compared against a lexicographic reference.
func TestSortVarInputShapes(t *testing.T) {
	const n = 2500
	cmpVar := func(a, b VarRecord) int {
		if c := bytes.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		return bytes.Compare(a.Payload, b.Payload)
	}
	for _, shape := range []sim.Shape{sim.ShapeNearSorted, sim.ShapeUpDown} {
		for _, codec := range []string{"varlen", "varlen+flate"} {
			t.Run(shape.String()+"/"+codec, func(t *testing.T) {
				in := shapedVarRecords(shape, n, 23)
				want := slices.Clone(in)
				slices.SortStableFunc(want, cmpVar)
				out, _, err := SortVar(in, Config{D: 4, B: 8, K: 3, Seed: 5, Codec: codec})
				if err != nil {
					t.Fatal(err)
				}
				if len(out) != n {
					t.Fatalf("sorted %d of %d records", len(out), n)
				}
				for i := range out {
					if !bytes.Equal(out[i].Key, want[i].Key) || !bytes.Equal(out[i].Payload, want[i].Payload) {
						t.Fatalf("record %d differs from reference", i)
					}
				}
			})
		}
	}
}
