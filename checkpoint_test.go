package srmsort

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"srmsort/internal/pdisk"
)

// ckptAlgorithms are the algorithms supporting Checkpoint (PSV is
// excluded by construction).
var ckptAlgorithms = []Algorithm{SRM, SRMDeterministic, DSM}

// noSleep makes retry backoff instant in tests.
func noSleep(policy pdisk.RetryPolicy) *pdisk.RetryPolicy {
	policy.Sleep = func(time.Duration) {}
	return &policy
}

func TestCheckpointFaultFreeEquivalence(t *testing.T) {
	in := randomRecords(3000, 11)
	for _, alg := range ckptAlgorithms {
		for _, backend := range []Backend{MemBackend, FileBackend} {
			t.Run(fmt.Sprintf("%v-%s", alg, backend), func(t *testing.T) {
				cfg := Config{D: 4, B: 8, K: 3, Algorithm: alg, Seed: 5,
					Backend: backend, TempDir: t.TempDir()}
				plain, plainStats, err := Sort(in, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Checkpoint = true
				ckpt, ckptStats, err := Sort(in, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(plain) != len(ckpt) {
					t.Fatalf("lengths differ: %d vs %d", len(plain), len(ckpt))
				}
				for i := range plain {
					if plain[i] != ckpt[i] {
						t.Fatalf("record %d differs: %v vs %v", i, plain[i], ckpt[i])
					}
				}
				// Checkpointing must not change what the sort does — only
				// persist what it has done.
				if plainStats.MergePasses != ckptStats.MergePasses ||
					plainStats.InitialRuns != ckptStats.InitialRuns ||
					plainStats.TotalOps() != ckptStats.TotalOps() {
					t.Fatalf("stats diverge: plain %+v vs checkpointed %+v", plainStats, ckptStats)
				}
			})
		}
	}
}

// countWrites measures the exact number of block-level store writes a
// checkpointed sort issues (Stats counts parallel operations, which move
// up to D blocks each — the fault schedule needs store-level counts).
func countWrites(t *testing.T, in []Record, cfg Config) int64 {
	t.Helper()
	fault := pdisk.NewFaultStore(pdisk.NewMemStore(), pdisk.FaultConfig{})
	cfg.Store = fault
	if _, _, err := Sort(in, cfg); err != nil {
		t.Fatal(err)
	}
	n := fault.OpCount("write")
	fault.Close()
	return n
}

// killAndResume runs a checkpointed sort over a FaultStore armed to tear
// the killAt-th write (simulating the process dying mid-write), then
// resumes over the same store without faults. It returns the resumed
// output and stats.
func killAndResume(t *testing.T, in []Record, cfg Config, store pdisk.Store, killAt int64) ([]Record, Stats) {
	t.Helper()
	fault := pdisk.NewFaultStore(store, pdisk.FaultConfig{TornWriteAt: killAt})
	killCfg := cfg
	killCfg.Store = fault
	_, _, err := Sort(in, killCfg)
	if err == nil {
		t.Fatalf("sort survived a kill at write %d", killAt)
	}
	var term *pdisk.TerminalError
	if !errors.As(err, &term) {
		t.Fatalf("kill surfaced as %v (%T), want *pdisk.TerminalError", err, err)
	}
	resumeCfg := cfg
	resumeCfg.Store = store // faults lifted: the "next process" sees clean disks
	out, stats, err := Resume(in, resumeCfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return out, stats
}

func TestKillAndResumeByteIdentical(t *testing.T) {
	in := randomRecords(2500, 23)
	for _, alg := range ckptAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := Config{D: 4, B: 8, K: 3, Algorithm: alg, Seed: 9, Checkpoint: true}
			want, wantStats, err := Sort(in, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if wantStats.MergePasses < 2 {
				t.Fatalf("geometry yields %d merge passes; test needs >= 2", wantStats.MergePasses)
			}
			totalWrites := countWrites(t, in, cfg)
			// Kill at a spread of points: during loading, mid-sort, near
			// the very end.
			for _, killAt := range []int64{3, totalWrites / 3, totalWrites - 2} {
				store := pdisk.NewMemStore()
				got, _ := killAndResume(t, in, cfg, store, killAt)
				if len(got) != len(want) {
					t.Fatalf("killAt=%d: %d records, want %d", killAt, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("killAt=%d: record %d = %v, want %v", killAt, i, got[i], want[i])
					}
				}
				store.Close()
			}
		})
	}
}

func TestKillAndResumeAcrossExecutionModes(t *testing.T) {
	// The checkpoint hooks thread through every execution mode: serial,
	// overlapped I/O, parallel workers, and both combined. A kill in any
	// of them must resume to the same bytes.
	in := randomRecords(2200, 29)
	modes := []struct {
		name    string
		async   bool
		workers int
	}{
		{"serial", false, 0},
		{"async", true, 0},
		{"workers", false, 4},
		{"async-workers", true, 4},
	}
	base := Config{D: 4, B: 8, K: 3, Algorithm: SRM, Seed: 37, Checkpoint: true}
	want, _, err := Sort(in, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			cfg := base
			cfg.Async = mode.async
			cfg.Workers = mode.workers
			killAt := countWrites(t, in, cfg) / 2
			store := pdisk.NewMemStore()
			defer store.Close()
			got, _ := killAndResume(t, in, cfg, store, killAt)
			if len(got) != len(want) {
				t.Fatalf("%d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestResumeSkipsCompletedPasses(t *testing.T) {
	in := randomRecords(2500, 31)
	cfg := Config{D: 4, B: 8, K: 3, Algorithm: SRM, Seed: 13, Checkpoint: true}
	want, wantStats, err := Sort(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.MergePasses < 2 {
		t.Fatalf("geometry yields %d merge passes; test needs >= 2", wantStats.MergePasses)
	}
	// Kill two writes before the end: the final pass is underway, every
	// earlier pass is checkpointed. The resumed sort must redo only the
	// final pass — its merge work is a strict fraction of the full run's.
	totalWrites := countWrites(t, in, cfg)
	store := pdisk.NewMemStore()
	defer store.Close()
	got, resumedStats := killAndResume(t, in, cfg, store, totalWrites-2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after resume", i)
		}
	}
	if resumedStats.MergePasses >= wantStats.MergePasses {
		t.Fatalf("resume redid completed passes: %d merge passes, full run had %d",
			resumedStats.MergePasses, wantStats.MergePasses)
	}
	if resumedStats.RunFormationWrites != 0 {
		t.Fatalf("resume redid run formation: %d writes", resumedStats.RunFormationWrites)
	}
	if resumedStats.MergeWrites >= wantStats.MergeWrites {
		t.Fatalf("resume redid merge work: %d writes, full run had %d",
			resumedStats.MergeWrites, wantStats.MergeWrites)
	}
}

func TestResumeOnFileBackendAcrossReopen(t *testing.T) {
	in := randomRecords(1500, 41)
	dir := t.TempDir()
	cfg := Config{D: 3, B: 8, K: 3, Algorithm: SRM, Seed: 17, Checkpoint: true,
		Backend: FileBackend, Dir: dir}
	want, _, err := Sort(in, Config{D: 3, B: 8, K: 3, Algorithm: SRM, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Kill mid-merge through a fault-injected FileStore, then resume with
	// a plain config pointing at the directory — a genuinely different
	// "process" reopening the on-disk state.
	fs, err := pdisk.NewFileStore(dir, cfg.B, cfg.D)
	if err != nil {
		t.Fatal(err)
	}
	killAt := countWrites(t, in, cfg) * 2 / 3
	fault := pdisk.NewFaultStore(fs, pdisk.FaultConfig{TornWriteAt: killAt})
	killCfg := cfg
	killCfg.Store = fault
	if _, _, err := Sort(in, killCfg); err == nil {
		t.Fatal("sort survived the kill")
	}
	fs.Close() // crash: handles gone, files remain

	got, _, err := Resume(in, cfg)
	if err != nil {
		t.Fatalf("resume over reopened dir: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after cross-process resume", i)
		}
	}
	// The recovery state is cleaned up after success.
	fs2, err := pdisk.NewFileStore(dir, cfg.B, cfg.D)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if _, ok, _ := fs2.LoadManifest(); ok {
		t.Fatal("manifest survived a completed resume")
	}
}

func TestResumeWithoutManifestRestartsFromScratch(t *testing.T) {
	in := randomRecords(800, 51)
	cfg := Config{D: 4, B: 8, K: 3, Algorithm: SRM, Seed: 19, Checkpoint: true}
	want, _, err := Sort(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Resume over a store that has leftover blocks but no manifest: it
	// must wipe and restart, not trip over the junk.
	store := pdisk.NewMemStore()
	defer store.Close()
	if err := store.WriteBlock(pdisk.BlockAddr{Disk: 0, Index: 0}, pdisk.StoredBlock{}); err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	got, stats, err := Resume(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InitialRuns == 0 {
		t.Fatal("restart-from-scratch did no work")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after scratch restart", i)
		}
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	in := randomRecords(1200, 61)
	cfg := Config{D: 4, B: 8, K: 3, Algorithm: SRM, Seed: 21, Checkpoint: true}
	store := pdisk.NewMemStore()
	defer store.Close()
	// Kill near the end so a manifest certainly exists on the store.
	fault := pdisk.NewFaultStore(store, pdisk.FaultConfig{
		TornWriteAt: countWrites(t, in, cfg) - 2})
	killCfg := cfg
	killCfg.Store = fault
	if _, _, err := Sort(in, killCfg); err == nil {
		t.Fatal("sort survived the kill")
	}
	for _, bad := range []Config{
		{D: 4, B: 8, K: 3, Algorithm: DSM, Checkpoint: true},           // different algorithm
		{D: 4, B: 8, K: 3, Algorithm: SRM, Seed: 99, Checkpoint: true}, // different seed
		{D: 4, B: 4, K: 3, Algorithm: SRM, Seed: 21, Checkpoint: true}, // different geometry
	} {
		bad.Store = store
		if _, _, err := Resume(in, bad); err == nil {
			t.Fatalf("resume accepted a manifest from a different configuration: %+v", bad)
		}
	}
}

// TestResumeVarRejectsMismatchedCodec: the checkpoint manifest records
// the codec identity, so resuming a varlen sort under a different codec
// — flate on, or back to fixed16 — must fail fast with a codec
// diagnosis, while the recorded codec resumes to the fault-free bytes.
func TestResumeVarRejectsMismatchedCodec(t *testing.T) {
	in := benchVarRecords(900, 67)
	cfg := Config{D: 4, B: 8, K: 3, Algorithm: SRM, Seed: 27, Checkpoint: true, Codec: "varlen"}

	// Fault-free probe: the reference output and the total write count.
	probe := pdisk.NewFaultStore(pdisk.NewMemStore(), pdisk.FaultConfig{})
	probeCfg := cfg
	probeCfg.Store = probe
	want, _, err := SortVar(in, probeCfg)
	if err != nil {
		t.Fatal(err)
	}
	writes := probe.OpCount("write")
	probe.Close()

	store := pdisk.NewMemStore()
	defer store.Close()
	// Kill near the end so a manifest certainly exists on the store.
	fault := pdisk.NewFaultStore(store, pdisk.FaultConfig{TornWriteAt: writes - 2})
	killCfg := cfg
	killCfg.Store = fault
	if _, _, err := SortVar(in, killCfg); err == nil {
		t.Fatal("sort survived the kill")
	}

	flate := cfg
	flate.Store = store
	flate.Codec = "varlen+flate"
	if _, _, err := ResumeVar(in, flate); err == nil || !strings.Contains(err.Error(), "codec varlen") {
		t.Fatalf("resume under varlen+flate on a varlen checkpoint: err = %v, want codec mismatch", err)
	}
	fixed := Config{D: 4, B: 8, K: 3, Algorithm: SRM, Seed: 27, Checkpoint: true, Store: store}
	if _, _, err := Resume(randomRecords(900, 67), fixed); err == nil || !strings.Contains(err.Error(), "codec varlen") {
		t.Fatalf("resume under fixed16 on a varlen checkpoint: err = %v, want codec mismatch", err)
	}

	good := cfg
	good.Store = store
	out, _, err := ResumeVar(in, good)
	if err != nil {
		t.Fatalf("resume under the recorded codec: %v", err)
	}
	if len(out) != len(want) {
		t.Fatalf("resumed %d records, want %d", len(out), len(want))
	}
	for i := range out {
		if !bytes.Equal(out[i].Key, want[i].Key) || !bytes.Equal(out[i].Payload, want[i].Payload) {
			t.Fatalf("record %d differs from the fault-free run", i)
		}
	}
}

func TestCheckpointRejectsPSV(t *testing.T) {
	in := randomRecords(600, 71)
	_, _, err := Sort(in, Config{D: 4, B: 16, K: 4, Algorithm: PSV, Checkpoint: true})
	if err == nil {
		t.Fatal("PSV accepted Checkpoint")
	}
}

func TestSortWithRetryAbsorbsTransientFaults(t *testing.T) {
	in := randomRecords(1500, 81)
	want, _, err := Sort(in, Config{D: 4, B: 8, K: 3, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	// 1% transient failures on reads and writes: with 4 attempts the sort
	// should sail through; without retries it would abort almost surely.
	store := pdisk.NewFaultStore(pdisk.NewMemStore(),
		pdisk.FaultConfig{Seed: 7, ReadFailProb: 0.01, WriteFailProb: 0.01})
	got, _, err := Sort(in, Config{D: 4, B: 8, K: 3, Seed: 25, Store: store,
		Retry: noSleep(pdisk.DefaultRetryPolicy())})
	if err != nil {
		t.Fatalf("retried sort failed: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs under fault injection", i)
		}
	}
}

func TestScrubHelper(t *testing.T) {
	dir := t.TempDir()
	fs, err := pdisk.NewFileStore(dir, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteBlock(pdisk.BlockAddr{Disk: 0, Index: 0}, pdisk.StoredBlock{}); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteBlockTorn(pdisk.BlockAddr{Disk: 1, Index: 0}, pdisk.StoredBlock{}); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	rep, err := Scrub(Config{D: 3, B: 8, Backend: FileBackend, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 2 || len(rep.Corrupt) != 1 {
		t.Fatalf("Scrub = %+v, want 2 blocks with 1 corrupt", rep)
	}
	if _, err := Scrub(Config{D: 3, B: 8}); err == nil {
		t.Fatal("Scrub accepted a memory backend")
	}
}
