// Server-level benchmark: sortd scheduler throughput as a function of
// tenant concurrency. Lives in package srmsort_test (unlike the library
// benchmarks) so it can import the internal jobs scheduler.
package srmsort_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"srmsort"
	"srmsort/internal/jobs"
)

// BenchmarkServerThroughput measures end-to-end job throughput through
// the sortd scheduler — ingest, admission, sort, egest — at increasing
// concurrent-tenant counts on a volatile manager. Custom metrics report
// jobs/s and aggregate sorted records/s; the concurrency sweep shows how
// much the shared budget, gate and stores cost or win versus running
// jobs one at a time.
func BenchmarkServerThroughput(b *testing.B) {
	spec := jobs.Spec{Algorithm: "srm", D: 4, B: 16, K: 3, Seed: 1}
	cfg, err := spec.Config()
	if err != nil {
		b.Fatal(err)
	}
	_, mNeed, err := cfg.MergeOrder()
	if err != nil {
		b.Fatal(err)
	}
	const recordsPerJob = 4000

	for _, conc := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("jobs=%d", conc), func(b *testing.B) {
			m, err := jobs.NewManager(jobs.Options{
				MemoryBudget: conc * mNeed,
				// One core slot per intended concurrent job, so the sweep
				// measures memory admission, not the host's CPU count.
				CoreBudget: conc,
				Defaults:   spec,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Kill()

			inputs := make([][]byte, conc)
			for i := range inputs {
				rng := rand.New(rand.NewSource(int64(1000 + i)))
				recs := make([]srmsort.Record, recordsPerJob)
				for k := range recs {
					recs[k] = srmsort.Record{Key: rng.Uint64(), Val: uint64(k)}
				}
				var buf bytes.Buffer
				if err := srmsort.WriteRecords(&buf, recs); err != nil {
					b.Fatal(err)
				}
				inputs[i] = buf.Bytes()
			}

			b.ResetTimer()
			start := time.Now()
			completed := 0
			for i := 0; i < b.N; i++ {
				js := make([]*jobs.Job, conc)
				for k := range js {
					j, err := m.Submit(jobs.Spec{}, bytes.NewReader(inputs[k]))
					if err != nil {
						b.Fatal(err)
					}
					js[k] = j
				}
				for _, j := range js {
					<-j.Done()
					if st := j.Status(); st.State != jobs.StateDone {
						b.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
					}
				}
				completed += conc
			}
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(completed)/elapsed.Seconds(), "jobs/s")
			b.ReportMetric(float64(completed*recordsPerJob)/elapsed.Seconds(), "recs/s")
		})
	}
}
